package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pq"
)

// slowAdjacency delays every adjacency read, standing in for a semi-external
// store: it keeps workers busy long enough for a deadline to fire
// mid-traversal.
type slowAdjacency struct {
	*graph.CSR[uint32]
	delay time.Duration
}

func (s *slowAdjacency) Neighbors(v uint32, scratch *graph.Scratch[uint32]) ([]uint32, []graph.Weight, error) {
	time.Sleep(s.delay)
	return s.CSR.Neighbors(v, scratch)
}

// TestContextCancelMidTraversal fires a deadline while workers are busy on a
// traversal that would otherwise run for seconds, and asserts that Wait
// returns the cancellation error promptly and that no worker goroutines leak.
func TestContextCancelMidTraversal(t *testing.T) {
	// A chain serializes the traversal: one visit at a time, each delayed,
	// so the full run would take ~4096 * delay >> the deadline.
	chain, err := gen.Chain[uint32](4096)
	if err != nil {
		t.Fatal(err)
	}
	g := &slowAdjacency{CSR: chain, delay: time.Millisecond}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err = BFS[uint32](g, 0, Config{Workers: 32, Context: ctx})
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The full traversal takes ~4s; cancellation must land far sooner. The
	// bound is loose (one visit's delay plus scheduling) to stay robust on
	// slow CI hosts.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}

	// All worker goroutines and the context watcher must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbortStopsSelfSustainingTraversal aborts an engine whose visitors push
// forever; without Abort the traversal never terminates.
func TestAbortStopsSelfSustainingTraversal(t *testing.T) {
	sentinel := errors.New("client went away")
	started := make(chan struct{})
	var once sync.Once
	e := New[uint32](Config{Workers: 4}, func(ctx *Ctx[uint32], it pq.Item) error {
		once.Do(func() { close(started) })
		ctx.Push(it.Pri+1, uint32((it.V+1)%1024), 0)
		return nil
	})
	e.Start()
	e.Push(0, 0, 0)
	<-started
	e.Abort(sentinel)
	done := make(chan error, 1)
	go func() {
		_, err := e.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want %v", err, sentinel)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after Abort")
	}
}

// TestContextPreCanceled verifies a traversal started under an already-dead
// context aborts without visiting (beyond at most the first pops in flight).
func TestContextPreCanceled(t *testing.T) {
	g, err := gen.RMAT[uint32](8, 8, gen.RMATA, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SSSP[uint32](g, 0, Config{Workers: 8, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContextUncancelledIsNoop pins that a live context changes nothing: the
// traversal completes and matches the no-context run.
func TestContextUncancelledIsNoop(t *testing.T) {
	g, err := gen.RMAT[uint32](10, 8, gen.RMATA, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := BFS[uint32](g, 0, Config{Workers: 16, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BFS[uint32](g, 0, Config{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Level {
		if got.Level[v] != want.Level[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got.Level[v], want.Level[v])
		}
	}
}
