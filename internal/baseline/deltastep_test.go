package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomWeighted(t testing.TB, n uint64, m int, maxW uint64, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 17))
	b := graph.NewBuilder[uint32](n, true)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), graph.Weight(r.Uint64N(maxW)))
	}
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomWeighted(t, 300, 1800, 100, seed)
		want, _, err := SerialDijkstra[uint32](g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []graph.Dist{1, 8, 64, 1000} {
			for _, workers := range []int{1, 4} {
				got, err := DeltaStepping[uint32](g, 0, delta, workers)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("seed=%d delta=%d workers=%d: dist[%d] = %d, want %d",
							seed, delta, workers, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestDeltaSteppingUnweightedGraph(t *testing.T) {
	// Unweighted adjacency: every edge weight reads as 1, so Δ-stepping
	// degenerates to BFS.
	g := lineGraph(t, 20)
	got, err := DeltaStepping[uint32](g, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 20; v++ {
		if got[v] != graph.Dist(v) {
			t.Fatalf("dist[%d] = %d", v, got[v])
		}
	}
}

func TestDeltaSteppingEdgeCases(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := DeltaStepping[uint32](g, 9, 4, 2); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	// delta=0 and workers=0 fall back to sane defaults.
	got, err := DeltaStepping[uint32](g, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 2 {
		t.Fatalf("dist[2] = %d", got[2])
	}
	// Zero-weight cycles must terminate.
	b := graph.NewBuilder[uint32](2, true)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0)
	zg, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DeltaStepping[uint32](zg, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 {
		t.Fatalf("dist[1] = %d", got[1])
	}
}

// Property: Δ-stepping equals Dijkstra for arbitrary graphs, deltas, and
// worker counts.
func TestQuickDeltaStepping(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint8
	}
	f := func(raw []rawEdge, d uint8, wk uint8) bool {
		const n = 64
		delta := graph.Dist(d%32) + 1
		workers := int(wk%4) + 1
		b := graph.NewBuilder[uint32](n, true)
		for _, e := range raw {
			b.AddEdge(uint32(e.S)%n, uint32(e.D)%n, graph.Weight(e.W))
		}
		g, err := b.Build(true)
		if err != nil {
			return false
		}
		want, _, err := SerialDijkstra[uint32](g, 0)
		if err != nil {
			return false
		}
		got, err := DeltaStepping[uint32](g, 0, delta, workers)
		if err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
