package lockfree

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

func randomDigraph(t testing.TB, n uint64, m int, weighted bool, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed*3+1))
	b := graph.NewBuilder[uint32](n, weighted)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), graph.Weight(r.Uint64N(64)))
	}
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomUndirected(t testing.TB, n uint64, m int, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed*5+3))
	b := graph.NewBuilder[uint32](n, false)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), 1)
	}
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var workerSweep = []int{1, 2, 8, 32}

func TestLockfreeBFSMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomDigraph(t, 300, 1500, false, seed)
		want, err := baseline.SerialBFS[uint32](g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := BFS(g, 0, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				wantD := uint32(InfDist32)
				if want[v] != graph.InfDist {
					wantD = uint32(want[v])
				}
				if res.Dist[v] != wantD {
					t.Fatalf("seed=%d workers=%d: dist[%d] = %d, want %d",
						seed, w, v, res.Dist[v], wantD)
				}
			}
		}
	}
}

func TestLockfreeSSSPMatchesDijkstra(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomDigraph(t, 300, 1500, true, seed)
		want, _, err := baseline.SerialDijkstra[uint32](g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := SSSP(g, 0, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				wantD := uint32(InfDist32)
				if want[v] != graph.InfDist {
					wantD = uint32(want[v])
				}
				if res.Dist[v] != wantD {
					t.Fatalf("seed=%d workers=%d: dist[%d] = %d, want %d",
						seed, w, v, res.Dist[v], wantD)
				}
			}
		}
	}
}

func TestLockfreeCCMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomUndirected(t, 400, 600, seed)
		want, err := baseline.SerialCC[uint32](g)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := CC(g, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if res.ID[v] != want[v] {
					t.Fatalf("seed=%d workers=%d: id[%d] = %d, want %d",
						seed, w, v, res.ID[v], want[v])
				}
			}
		}
	}
}

func TestLockfreeNoStealStillCorrect(t *testing.T) {
	// Without stealing, work pushed to a worker's own queue must still
	// complete: every push targets the pushing worker, and the single seed
	// means worker 0 does everything.
	g := randomDigraph(t, 200, 1200, false, 9)
	want, err := baseline.SerialBFS[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, Config{Workers: 8, NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		wantD := uint32(InfDist32)
		if want[v] != graph.InfDist {
			wantD = uint32(want[v])
		}
		if res.Dist[v] != wantD {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], wantD)
		}
	}
	if res.Stats.Steals != 0 {
		t.Fatalf("steals = %d with NoSteal", res.Stats.Steals)
	}
}

func TestLockfreeStealingHappens(t *testing.T) {
	g := randomDigraph(t, 2000, 16000, false, 10)
	res, err := BFS(g, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The single-source seed lands on one worker; the other 7 can only get
	// work by stealing.
	if res.Stats.Steals == 0 {
		t.Fatal("no steals recorded on multi-worker single-seed run")
	}
}

func TestLockfreeSourceOutOfRange(t *testing.T) {
	g := randomDigraph(t, 4, 4, false, 1)
	if _, err := BFS(g, 99, Config{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := SSSP(g, 99, Config{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestLockfreeDistanceOverflowSurfaces(t *testing.T) {
	// Two vertices with an edge weight that would push the packed distance
	// past 2^32-2 must fail loudly, not wrap.
	b := graph.NewBuilder[uint32](3, true)
	b.AddEdge(0, 1, ^graph.Weight(0)) // 2^32-1
	b.AddEdge(1, 2, ^graph.Weight(0))
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSSP(g, 0, Config{Workers: 2}); err == nil {
		t.Fatal("distance overflow not surfaced")
	}
}

func TestLockfreeAgainstCoreEngine(t *testing.T) {
	// The two engines must agree label-for-label.
	g := randomUndirected(t, 500, 2000, 11)
	coreRes, err := core.CC[uint32](g, core.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	lfRes, err := CC(g, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range coreRes.ID {
		if uint32(coreRes.ID[v]) != lfRes.ID[v] {
			t.Fatalf("engines disagree at %d: core=%d lockfree=%d", v, coreRes.ID[v], lfRes.ID[v])
		}
	}
}

func TestPackUnpack(t *testing.T) {
	for _, c := range [][2]uint32{{0, 0}, {5, 9}, {InfDist32, InfDist32}, {1 << 31, 7}} {
		d, p := unpack(pack(c[0], c[1]))
		if d != c[0] || p != c[1] {
			t.Fatalf("pack/unpack(%v) = (%d,%d)", c, d, p)
		}
	}
}

// Property: lockfree BFS equals serial BFS on arbitrary digraphs.
func TestQuickLockfreeBFS(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge, w uint8) bool {
		const n = 64
		workers := int(w%6) + 1
		b := graph.NewBuilder[uint32](n, false)
		for _, e := range raw {
			b.AddEdge(uint32(e.S)%n, uint32(e.D)%n, 1)
		}
		g, err := b.Build(true)
		if err != nil {
			return false
		}
		want, err := baseline.SerialBFS[uint32](g, 0)
		if err != nil {
			return false
		}
		got, err := BFS(g, 0, Config{Workers: workers})
		if err != nil {
			return false
		}
		for v := range want {
			wantD := uint32(InfDist32)
			if want[v] != graph.InfDist {
				wantD = uint32(want[v])
			}
			if got.Dist[v] != wantD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
