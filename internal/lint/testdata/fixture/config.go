package fixture

import (
	"context"
	"errors"
)

var errBadKind = errors.New("bad kind")

// Config has normalize coverage for Workers only: Depth is a violation.
// Ctx is context.Context and therefore exempt; the unexported field is
// ignored.
type Config struct {
	Workers int
	Depth   int
	Ctx     context.Context
	secret  int
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	c.secret = 0
}

// OrphanConfig has no validator at all: violation on the type.
type OrphanConfig struct {
	Size int
}

// TunedConfig is fully validated via a package function taking it as the
// first parameter: no diagnostics.
type TunedConfig struct {
	Gap   int
	Batch int
}

func validate(c *TunedConfig) {
	if c.Gap < 0 {
		c.Gap = 0
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
}

// CountConfig matches the name pattern but is not struct-underlying:
// skipped entirely.
type CountConfig int

// ShardConfig mirrors the sem shard writer's config: a value-receiver
// Validate covers Shard and Shards, a pointer-receiver normalize covers
// Width — references from both receiver kinds pool. Replicas is touched by
// neither: violation.
type ShardConfig struct {
	Shard    int
	Shards   int
	Width    int
	Replicas int
}

func (c ShardConfig) Validate() bool {
	return c.Shards >= 1 && c.Shard >= 0 && c.Shard < c.Shards
}

func (c *ShardConfig) normalize() {
	if c.Width <= 0 {
		c.Width = 4096
	}
}

// PolicyConfig mirrors the sem cache-policy config: Validate copies the
// receiver and re-validates through normalize, which defaults the Kind
// string. Both methods reference Kind, so the struct is clean; Trace is
// referenced by neither: violation.
type PolicyConfig struct {
	Kind  string
	Trace bool
}

func (c *PolicyConfig) normalize() {
	if c.Kind == "" {
		c.Kind = "lru"
	}
}

func (c *PolicyConfig) Validate() error {
	cc := *c
	cc.normalize()
	if cc.Kind != "lru" && cc.Kind != "state" {
		return errBadKind
	}
	return nil
}
