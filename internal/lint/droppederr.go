package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags I/O calls whose error result is silently discarded. The
// semi-external layers (internal/sem, internal/ssd, internal/extsort) funnel
// every byte through ReadAt/WriteAt/Write/Close; a dropped error there turns
// device failure into silent graph corruption. Flagged shapes:
//
//	f.Close()            // expression statement, error vanishes
//	n, _ := f.ReadAt(p)  // tuple assignment, error position is blank
//
// Two shapes are deliberately accepted:
//
//	_ = f.Close()        // solitary blank assign: explicit, auditable intent
//	defer f.Close()      // defer cannot propagate the error; conventional
//	                     // for read-only resources
//
// The method-name set is the positional/streams family the storage layers
// use: Read, ReadAt, Write, WriteAt, Close, Flush, Sync.
const droppedErrName = "droppederr"

var DroppedErr = &Analyzer{
	Name: droppedErrName,
	Doc:  "ignored error results from Read/ReadAt/Write/WriteAt/Close/Flush/Sync",
	Run:  runDroppedErr,
}

var droppedErrMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Close": true, "Flush": true, "Sync": true,
}

// errReturningIOCall reports whether call is a method call (not a package-
// qualified function) in the watched name set whose final result is error.
func errReturningIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !droppedErrMethods[sel.Sel.Name] {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return "", false // pkg.Func(...), e.g. fmt.Fprintln — not an I/O method
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

func runDroppedErr(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := errReturningIOCall(p.Info, call); ok {
						diags = append(diags, Diagnostic{
							Pos:      p.Fset.Position(stmt.Pos()),
							Analyzer: droppedErrName,
							Message:  name + " error is dropped; handle it or assign it to _ explicitly",
						})
					}
				}
			case *ast.AssignStmt:
				// n, _ := f.ReadAt(...): some results used, error blanked.
				if len(stmt.Rhs) != 1 || len(stmt.Lhs) < 2 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				allBlank := true
				for _, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank {
					return true // fully explicit discard
				}
				if last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
					if name, ok := errReturningIOCall(p.Info, call); ok {
						diags = append(diags, Diagnostic{
							Pos:      p.Fset.Position(stmt.Pos()),
							Analyzer: droppedErrName,
							Message:  name + " error is blanked while other results are used; handle it",
						})
					}
				}
			}
			return true
		})
	}
	return diags
}
