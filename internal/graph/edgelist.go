package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated edge-list text format used by
// common graph-trace distributions (SNAP datasets, WebGraph ASCII dumps):
// one "src dst [weight]" triple per line, '#' or '%' comment lines ignored.
// The vertex count is one past the largest endpoint unless minVertices is
// larger. Weighted is inferred from the first data line and must then be
// consistent.
func ReadEdgeList[V Vertex](r io.Reader, minVertices uint64) (*CSR[V], error) {
	return ReadEdgeListLimit[V](r, minVertices, 0)
}

// ReadEdgeListLimit is ReadEdgeList with an upper bound on the vertex count:
// inputs naming a vertex id >= maxVertices are rejected rather than driving
// an allocation proportional to the id. maxVertices = 0 means unlimited; set
// a bound when parsing untrusted input.
func ReadEdgeListLimit[V Vertex](r io.Reader, minVertices, maxVertices uint64) (*CSR[V], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge[V]
	maxID := uint64(0)
	weighted := false
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q: %w", lineNo, fields[1], err)
		}
		if first {
			weighted = len(fields) == 3
			first = false
		} else if (len(fields) == 3) != weighted {
			return nil, fmt.Errorf("graph: line %d: inconsistent weight column", lineNo)
		}
		var w Weight
		if weighted {
			w64, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
			w = Weight(w64)
		}
		if uint64(V(src)) != src || uint64(V(dst)) != dst {
			return nil, fmt.Errorf("graph: line %d: endpoint exceeds vertex width", lineNo)
		}
		if maxVertices > 0 && (src >= maxVertices || dst >= maxVertices) {
			return nil, fmt.Errorf("graph: line %d: endpoint exceeds vertex limit %d", lineNo, maxVertices)
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge[V]{Src: V(src), Dst: V(dst), W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := minVertices
	if len(edges) > 0 && maxID+1 > n {
		n = maxID + 1
	}
	return FromEdges(n, weighted, true, edges)
}

// WriteEdgeList writes g in the text edge-list format ReadEdgeList parses,
// with a weight column when the graph is weighted.
func WriteEdgeList[V Vertex](w io.Writer, g *CSR[V]) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "# %d vertices, %d edges, weighted=%v\n",
		g.NumVertices(), g.NumEdges(), g.Weighted())
	var err error
	g.ForEachEdge(func(u, v V, wt Weight) {
		if err != nil {
			return
		}
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}
