package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// encodeList sorts a copy of ts (weights carried along when non-nil) and
// encodes it as one block for v.
func encodeList(t *testing.T, v uint32, ts []uint32, ws []Weight) ([]byte, []uint32, []Weight) {
	t.Helper()
	targets := append([]uint32(nil), ts...)
	var weights []Weight
	if ws != nil {
		weights = append([]Weight(nil), ws...)
		sort.Sort(&pairSort[uint32]{t: targets, w: weights})
	} else {
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	}
	block, err := AppendAdjBlock(nil, v, targets, weights)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return block, targets, weights
}

func TestAdjBlockRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		v    uint32
		ts   []uint32
		ws   []Weight
	}{
		{"empty", 5, nil, nil},
		{"self-loop", 7, []uint32{7}, nil},
		{"below-source", 100, []uint32{0, 1, 99}, nil},
		{"above-source", 0, []uint32{1, 2, 1 << 30}, nil},
		{"duplicates", 3, []uint32{4, 4, 4}, nil},
		{"weighted", 9, []uint32{1, 9, 20}, []Weight{0, ^Weight(0), 7}},
		{"max-ids", ^uint32(0), []uint32{0, ^uint32(0)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			block, want, wantW := encodeList(t, tc.v, tc.ts, tc.ws)
			got := make([]uint32, len(want))
			var gotW []Weight
			if wantW != nil {
				gotW = make([]Weight, len(wantW))
			}
			n, err := DecodeAdjBlock(block, tc.v, got, gotW)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if n != len(block) {
				t.Fatalf("consumed %d of %d block bytes", n, len(block))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("target[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			for i := range wantW {
				if gotW[i] != wantW[i] {
					t.Fatalf("weight[%d] = %d, want %d", i, gotW[i], wantW[i])
				}
			}
		})
	}
}

func TestAppendAdjBlockRejectsUnsorted(t *testing.T) {
	if _, err := AppendAdjBlock(nil, uint32(0), []uint32{5, 3}, nil); err != ErrUnsortedAdjacency {
		t.Fatalf("err = %v, want ErrUnsortedAdjacency", err)
	}
}

func TestDecodeAdjBlockTruncated(t *testing.T) {
	block, _, _ := encodeList(t, 10, []uint32{2, 11, 4000}, []Weight{1, 2, 3})
	targets := make([]uint32, 3)
	weights := make([]Weight, 3)
	for cut := 0; cut < len(block); cut++ {
		if _, err := DecodeAdjBlock(block[:cut], uint32(10), targets, weights); err != ErrCorruptBlock {
			t.Fatalf("cut=%d: err = %v, want ErrCorruptBlock", cut, err)
		}
	}
}

// Decoding with a 32-bit vertex type must reject blocks whose gaps walk the
// running id past the vertex width instead of silently truncating.
func TestDecodeAdjBlockOverflow(t *testing.T) {
	block, err := AppendAdjBlock(nil, uint64(1), []uint64{1 << 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAdjBlock(block, uint32(1), make([]uint32, 1), nil); err != ErrCorruptBlock {
		t.Fatalf("err = %v, want ErrCorruptBlock", err)
	}
}

func TestNeighborCursor(t *testing.T) {
	v := uint32(50)
	block, want, wantW := encodeList(t, v, []uint32{3, 49, 50, 51, 4096}, []Weight{9, 8, 7, 6, 5})
	c := Cursor(block, v, len(want))
	for i, w := range want {
		got, ok := c.Next()
		if !ok || got != w {
			t.Fatalf("Next #%d = (%d,%v), want (%d,true)", i, got, ok, w)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("Next past degree succeeded")
	}
	for i, w := range wantW {
		got, ok := c.NextWeight()
		if !ok || got != w {
			t.Fatalf("NextWeight #%d = (%d,%v), want (%d,true)", i, got, ok, w)
		}
	}
	if _, ok := c.NextWeight(); ok {
		t.Fatal("NextWeight past degree succeeded")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if c.Consumed() != len(block) {
		t.Fatalf("cursor consumed %d of %d bytes", c.Consumed(), len(block))
	}
}

// FuzzAdjBlockRoundTrip drives the codec with arbitrary adjacency lists:
// whatever AppendAdjBlock encodes, DecodeAdjBlock must reproduce exactly and
// consume to the byte.
func FuzzAdjBlockRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(7), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(^uint32(0), []byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, v uint32, raw []byte) {
		if len(raw) > 1<<12 {
			return
		}
		// Interpret the fuzz bytes as a neighbor list: 4 bytes of target + 1
		// byte of weight per edge.
		var ts []uint32
		var ws []Weight
		for i := 0; i+5 <= len(raw); i += 5 {
			ts = append(ts, uint32(raw[i])|uint32(raw[i+1])<<8|uint32(raw[i+2])<<16|uint32(raw[i+3])<<24)
			ws = append(ws, Weight(raw[i+4]))
		}
		if len(ts) == 0 {
			return
		}
		sort.Sort(&pairSort[uint32]{t: ts, w: ws})
		block, err := AppendAdjBlock(nil, v, ts, ws)
		if err != nil {
			t.Fatalf("encode sorted list: %v", err)
		}
		got := make([]uint32, len(ts))
		gotW := make([]Weight, len(ws))
		n, err := DecodeAdjBlock(block, v, got, gotW)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(block) {
			t.Fatalf("consumed %d of %d bytes", n, len(block))
		}
		for i := range ts {
			if got[i] != ts[i] || gotW[i] != ws[i] {
				t.Fatalf("edge %d: got (%d,%d), want (%d,%d)", i, got[i], gotW[i], ts[i], ws[i])
			}
		}
	})
}

// FuzzDecodeAdjBlock feeds arbitrary bytes to the decoder: it must never
// panic or read past the block, whatever degree the index claims.
func FuzzDecodeAdjBlock(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint32(0), true)
	f.Add([]byte{0x80}, uint8(3), uint32(9), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(4), ^uint32(0), true)
	f.Fuzz(func(t *testing.T, block []byte, deg uint8, v uint32, weighted bool) {
		targets := make([]uint32, deg)
		var weights []Weight
		if weighted {
			weights = make([]Weight, deg)
		}
		n, err := DecodeAdjBlock(block, v, targets, weights)
		if err == nil && n > len(block) {
			t.Fatalf("consumed %d bytes of a %d-byte block", n, len(block))
		}
		c := Cursor(block, v, int(deg))
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		for {
			if _, ok := c.NextWeight(); !ok {
				break
			}
		}
	})
}

// Property: compressed and raw CSR expose identical adjacency — same order,
// same weights — for any Builder input (Builder sorts targets, so no
// reordering is involved).
func TestQuickCompressedMatchesRawAdjacency(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint16
	}
	f := func(raw []rawEdge, weighted, dedup bool) bool {
		const n = 256
		b := NewBuilder[uint32](n, weighted)
		for _, e := range raw {
			b.AddEdge(uint32(e.S), uint32(e.D), Weight(e.W))
		}
		g, err := b.Build(dedup)
		if err != nil {
			return false
		}
		c, err := Compress(g)
		if err != nil {
			return false
		}
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() || c.Weighted() != g.Weighted() {
			return false
		}
		scratch := &Scratch[uint32]{}
		for v := uint32(0); v < n; v++ {
			if c.Degree(v) != g.Degree(v) {
				return false
			}
			wantT, wantW, _ := g.Neighbors(v, nil)
			gotT, gotW, err := c.Neighbors(v, scratch)
			if err != nil || len(gotT) != len(wantT) {
				return false
			}
			for i := range wantT {
				if gotT[i] != wantT[i] {
					return false
				}
				if weighted && gotW[i] != wantW[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, m = 500, 4000
	b := NewBuilder[uint32](n, true)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)), Weight(rng.Uint32()))
	}
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.CompressedBytes() >= int64(g.NumEdges()*8) {
		t.Fatalf("compression did not shrink: %d blob bytes for %d raw", c.CompressedBytes(), g.NumEdges()*8)
	}
	back, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), back.NumEdges())
	}
	for v := uint32(0); v < n; v++ {
		wt, ww, _ := g.Neighbors(v, nil)
		bt, bw, _ := back.Neighbors(v, nil)
		if len(wt) != len(bt) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range wt {
			if wt[i] != bt[i] || ww[i] != bw[i] {
				t.Fatalf("vertex %d edge %d: (%d,%d) -> (%d,%d)", v, i, wt[i], ww[i], bt[i], bw[i])
			}
		}
	}
}

// NewCompressedCSRRaw must reject inconsistent indices rather than build a
// graph that decodes garbage.
func TestNewCompressedCSRRawValidation(t *testing.T) {
	if _, err := NewCompressedCSRRaw[uint32]([]uint64{0, 5}, []uint32{1}, []byte{0}, false); err == nil {
		t.Fatal("accepted offsets not spanning blob")
	}
	if _, err := NewCompressedCSRRaw[uint32]([]uint64{0, 1, 0}, []uint32{1, 1}, nil, false); err == nil {
		t.Fatal("accepted decreasing offsets")
	}
	if _, err := NewCompressedCSRRaw[uint32]([]uint64{0}, []uint32{1}, nil, false); err == nil {
		t.Fatal("accepted mismatched degree count")
	}
}
